package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Normalize returns the configuration with every run-scoped observer
// stripped: the tracer, the probe recorder, and the flight recorder
// describe how one particular run is watched, not the machine being
// simulated, so two runs differing only in observers are the same
// experiment. The run layer memoizes on the normalized config, and the
// persistent result store hashes it — both must agree on what "the same
// machine" means, which is why this lives here and not in either.
func (c Config) Normalize() Config {
	c.Trace = nil
	c.Probe = nil
	c.FlightRecorder = 0
	c.TxnTrace = nil
	return c
}

// Hash returns the canonical content address of one simulation: the
// normalized configuration, the workload name, the dataset scale the
// workload was built at, and a version string (the binary's git
// describe plus the store schema version). The version participates in
// the key so a result store written by an older build can never poison
// a newer one — a changed simulator silently misses and re-simulates
// instead of serving stale physics. The scale participates because it
// selects the workload's dataset sizes: the same machine running "fir"
// at small and paper scale are different experiments with different
// reports, and a store shared across -scale values must never serve
// one as the other.
//
// The hash is SHA-256 over the JSON encoding of a fixed four-field
// struct. encoding/json emits struct fields in declaration order and
// formats integers and strings canonically, so the encoding — and
// therefore the hash — is deterministic across processes and platforms
// for any comparable Config value.
func (c Config) Hash(workload, scale, version string) string {
	payload := struct {
		Version  string `json:"version"`
		Scale    string `json:"scale"`
		Workload string `json:"workload"`
		Config   Config `json:"config"`
	}{version, scale, workload, c.Normalize()}
	b, err := json.Marshal(payload)
	if err != nil {
		// Config is a plain value struct (observers are json:"-" and nil
		// after Normalize); Marshal cannot fail on it. Panic loudly if a
		// future field breaks that.
		panic(fmt.Sprintf("core: config hash encoding failed: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

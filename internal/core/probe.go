package core

import (
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/dma"
	"repro/internal/ledger"
	"repro/internal/probe"
	"repro/internal/sim"
)

// attachProbe registers every model's counters with the recorder. All
// sources are read-only closures re-evaluated at each epoch tick, so
// attaching a probe cannot perturb the event order (the invariant
// internal/probe documents and TestProbeDoesNotPerturbReports pins).
//
// Metric naming: "<unit>.<counter>" for snapshot sources, bare dotted
// names for gauges. Cumulative busy times are exported in femtoseconds
// as Counters ("*_busy_fs"); their per-epoch delta over the interval is
// the utilization series.
func (s *System) attachProbe(r *probe.Recorder) {
	// Engine self-metrics: fast-path hit rate and dispatch throughput
	// over time, plus the instantaneous event-queue depth.
	r.AddSnapshot("engine", func(put func(string, float64)) {
		s.eng.Metrics().Snapshot(put)
	})
	r.AddGauge("engine.heap_depth", probe.Level, func(sim.Time) float64 {
		return float64(s.eng.QueueLen())
	})

	// Core issue counters (aggregated) and store-buffer fill.
	r.AddSnapshot("cpu", func(put func(string, float64)) {
		var agg cpu.Stats
		for _, p := range s.procs {
			agg.Add(p.Stats())
		}
		agg.Snapshot(put)
	})
	r.AddGauge("cpu.storebuf", probe.Level, func(now sim.Time) float64 {
		n := 0
		for _, p := range s.procs {
			n += p.StoreBufOccupancy(now)
		}
		return float64(n)
	})

	// First-level storage: the CC/INC L1s or the STR 8 KB caches.
	r.AddSnapshot("l1", func(put func(string, float64)) {
		s.l1Stats().Snapshot(put)
	})

	// Shared hierarchy.
	r.AddSnapshot("l2", func(put func(string, float64)) {
		s.unc.L2Stats().Snapshot(put)
	})
	r.AddGauge("l2.port_busy_fs", probe.Counter, func(sim.Time) float64 {
		return float64(s.unc.L2PortBusy())
	})
	r.AddSnapshot("dram", func(put func(string, float64)) {
		s.unc.DRAMStats().Snapshot(put)
	})
	r.AddGauge("dram.channel_busy_fs", probe.Counter, func(sim.Time) float64 {
		return float64(s.unc.ChannelBusy())
	})
	r.AddSnapshot("noc", func(put func(string, float64)) {
		s.net.Stats().Snapshot(put)
	})
	r.AddGauge("noc.bus_busy_fs", probe.Counter, func(sim.Time) float64 {
		return float64(s.net.BusBusy())
	})
	r.AddGauge("noc.xbar_busy_fs", probe.Counter, func(sim.Time) float64 {
		return float64(s.net.XbarBusy())
	})

	// Cycle-accounting classes aggregated across cores (Idle excluded:
	// it is derived from wall minus finish at report time).
	if s.cfg.CycleLedger {
		r.AddSnapshot("cycles", func(put func(string, float64)) {
			var agg ledger.Ledger
			for _, p := range s.procs {
				agg.Add(p.Ledger())
			}
			agg.Snapshot(put)
		})
	}

	// Model-specific sources.
	switch s.cfg.Model {
	case CC:
		r.AddSnapshot("coher", func(put func(string, float64)) {
			s.dom.Stats().Snapshot(put)
		})
	case INC:
		r.AddSnapshot("inc", func(put func(string, float64)) {
			s.inc.Stats().Snapshot(put)
		})
	case STR:
		r.AddSnapshot("dma", func(put func(string, float64)) {
			var agg dma.Stats
			for _, m := range s.strs {
				agg.Add(m.DMA().Stats())
			}
			agg.Snapshot(put)
		})
		r.AddGauge("dma.queued", probe.Level, func(sim.Time) float64 {
			n := 0
			for _, m := range s.strs {
				n += m.DMA().QueuedCommands()
			}
			return float64(n)
		})
		r.AddGauge("dma.busy", probe.Level, func(sim.Time) float64 {
			n := 0
			for _, m := range s.strs {
				if m.DMA().Busy() {
					n++
				}
			}
			return float64(n)
		})
	}
}

// l1Stats aggregates the first-level tag arrays of whichever model is
// built (shared by report() and the probe's "l1" source).
func (s *System) l1Stats() cache.Stats {
	var agg cache.Stats
	switch s.cfg.Model {
	case CC:
		for i := 0; i < s.cfg.Cores; i++ {
			agg.Add(s.dom.L1(i).Stats())
		}
	case INC:
		for i := 0; i < s.cfg.Cores; i++ {
			agg.Add(s.inc.L1(i).Stats())
		}
	case STR:
		for _, m := range s.strs {
			agg.Add(m.Cache().Stats())
		}
	}
	return agg
}

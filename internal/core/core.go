// Package core assembles the study's CMP (Figure 1, Table 2) in either
// memory model and runs workloads on it. It is the framework the paper's
// comparison is built on: identical cores, interconnect, L2, DRAM and
// energy model, with only the first-level data storage swapped between
// coherent caches (CC) and local stores + DMA (STR).
package core

import (
	"fmt"

	"repro/internal/coher"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/incoher"
	"repro/internal/ledger"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/txntrace"
	"repro/internal/uncore"
)

// Model selects the on-chip memory model.
type Model int

// The memory models: the study's two, plus the third practical corner
// of its Table 1 design space as an extension.
const (
	CC  Model = iota // hardware-coherent caches
	STR              // software-managed streaming memory
	// INC is the incoherent cache-based model (Table 1's remaining
	// practical option): hardware locality, software communication.
	INC
)

// String returns the paper's abbreviation.
func (m Model) String() string {
	switch m {
	case CC:
		return "CC"
	case STR:
		return "STR"
	case INC:
		return "INC"
	}
	return "?"
}

// Config describes one experimental machine. The zero value is not
// valid; start from DefaultConfig.
type Config struct {
	Model Model
	// Cores is the number of processors: the paper uses 1, 2, 4, 8, 16.
	Cores int
	// CoreMHz is the core clock: 800, 1600, 3200 or 6400. Network, L2
	// and DRAM clocks stay fixed when this scales (Section 5.3).
	CoreMHz uint64
	// DRAMBandwidthMBps is the memory channel bandwidth: 1600 (default),
	// 3200, 6400 or 12800.
	DRAMBandwidthMBps uint64
	// PrefetchDepth enables the CC hardware prefetcher when positive
	// ("P4" in Figure 7 is depth 4).
	PrefetchDepth int
	// NoWriteAllocate selects the CC no-write-allocate store policy with
	// a write-gathering buffer (Section 5.5 footnote ablation).
	NoWriteAllocate bool
	// SnoopFilter enables the RegionScout-style coarse-grain snoop
	// filter (the traffic-filter enhancement the paper's Section 8
	// points to).
	SnoopFilter bool
	// InstrPerIMiss and IMissPenalty configure the analytic I-cache
	// model; workloads with large code footprints set InstrPerIMiss in
	// Setup (0 = perfect I-cache).
	InstrPerIMiss uint64
	IMissPenalty  sim.Time
	// MaxSimTime aborts runaway simulations when non-zero.
	MaxSimTime sim.Time

	// Ablation knobs beyond the paper's sweeps (zero = Table 2 value).
	L2SizeKB        uint64 // shared L2 capacity override
	L2Banks         int    // address-interleaved L2 banks (default 1)
	DRAMChannels    int    // address-interleaved memory channels (default 1)
	CoresPerCluster int    // cores per local bus (default 4)
	DMAOutstanding  int    // concurrent DMA accesses (default 16)
	StoreBuffer     int    // store-buffer depth (default 8; 1 = blocking stores)

	// CycleLedger enables the cycle-accounting and latency-distribution
	// layer (internal/ledger): per-core cycle ledgers with the fixed
	// class taxonomy plus service-time histograms across the memory
	// system. The Report then carries Cycles and Latency blocks. Off by
	// default: every charge site degenerates to a nil compare, and the
	// simulated outcome is identical either way (accounting reads the
	// clocks, it never moves them).
	CycleLedger bool

	// Trace, when non-nil, collects per-core stall/sync spans for
	// timeline export (internal/trace).
	Trace cpu.Tracer `json:"-"`

	// Probe, when non-nil, samples the whole machine every
	// Probe.Interval() of simulated time (internal/probe). Sampling reads
	// counters only, so the simulated outcome is identical with it on or
	// off. Like Trace, a Recorder belongs to exactly one run.
	Probe *probe.Recorder `json:"-"`

	// FlightRecorder, when positive, arms the engine's flight recorder
	// to retain the last K scheduler events (sim.SetFlightRecorder),
	// embedded in every typed failure's EngineState. Like Trace and
	// Probe it is a run-scoped observer, not part of the simulated
	// machine: it never moves a clock, so the outcome is identical with
	// it on or off, and the run layer excludes it from the memo key.
	FlightRecorder int `json:"flight_recorder,omitempty"`

	// TxnTrace, when non-nil, records per-transaction causal traces
	// (internal/txntrace): sampled full trees plus worst-K exemplar
	// reservoirs per latency class. Like Trace and Probe it is a
	// run-scoped observer behind the nil-sentinel pattern — it reads
	// clocks, never moves them — so the report is byte-identical with
	// it attached or not.
	TxnTrace *txntrace.Tracer `json:"-"`
}

// DefaultConfig is the paper's default machine: 800 MHz cores, 1.6 GB/s
// channel, no prefetching, write-allocate caches.
func DefaultConfig(model Model, cores int) Config {
	return Config{
		Model:             model,
		Cores:             cores,
		CoreMHz:           800,
		DRAMBandwidthMBps: 1600,
		IMissPenalty:      20 * sim.Nanosecond,
		MaxSimTime:        20 * sim.Second,
	}
}

// System is one assembled machine.
type System struct {
	cfg   Config
	eng   *sim.Engine
	as    *mem.AddressSpace
	net   *noc.Network
	unc   *uncore.Uncore
	procs []*cpu.Proc
	dom   *coher.Domain   // CC only
	strs  []*stream.Mem   // STR only
	inc   *incoher.Domain // INC only
	lat   *ledger.Latency // non-nil when cfg.CycleLedger
	ran   bool
}

// Workload is a program for the machine: Setup allocates data and
// synchronization, Run executes on every core concurrently, and Verify
// checks the computed result against an independent reference.
type Workload interface {
	Name() string
	Setup(sys *System)
	Run(p *cpu.Proc)
	Verify() error
}

// InlineWorkload is an optional Workload extension: a workload that can
// express a core's body as a resumable state machine (sim.Runnable)
// returns it from InlineBody, and the system runs that core as an
// inline task — its events dispatch as plain function calls, with no
// goroutine. The machine must yield exactly where the goroutine body
// would sync or block, which keeps the schedule identical. Returning
// nil falls back to the goroutine path for that core (the memory model
// is already bound when InlineBody is called, so the workload can
// decide per model).
type InlineWorkload interface {
	InlineBody(p *cpu.Proc) sim.Runnable
}

// inlineCore chains a workload's body machine with the model's finish
// sequence — the inline twin of the spawned closure `w.Run(p);
// p.Finish()`. The transition happens inside one Step, so no yield
// separates the body's last event from the finish drain, exactly as in
// the goroutine body.
type inlineCore struct {
	body sim.Runnable
	fin  sim.Runnable
}

func (c *inlineCore) Step(t *sim.Task) sim.Status {
	if c.body != nil {
		s := c.body.Step(t)
		if s != sim.StatusDone {
			return s
		}
		c.body = nil
	}
	return c.fin.Step(t)
}

// New assembles a machine. It panics when the configuration is invalid;
// callers that need a typed error instead call cfg.Validate first (the
// run layer does, so a bad config fails before any goroutine spawns).
func New(cfg Config) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	ncfg := noc.DefaultConfig(cfg.Cores)
	if cfg.CoresPerCluster > 0 {
		ncfg = noc.DefaultConfigClustered(cfg.Cores, cfg.CoresPerCluster)
	}
	s := &System{
		cfg: cfg,
		eng: sim.NewEngine(),
		as:  mem.NewAddressSpace(),
		net: noc.New(ncfg),
	}
	s.eng.MaxTime = cfg.MaxSimTime
	if cfg.FlightRecorder > 0 {
		s.eng.SetFlightRecorder(cfg.FlightRecorder)
	}
	ucfg := uncore.DefaultConfig()
	ucfg.DRAM = dram.DefaultConfig()
	if cfg.DRAMBandwidthMBps != 0 {
		ucfg.DRAM.BandwidthMBps = cfg.DRAMBandwidthMBps
	}
	if cfg.L2SizeKB != 0 {
		ucfg.L2Size = cfg.L2SizeKB * 1024
	}
	if cfg.L2Banks > 0 {
		ucfg.L2Banks = cfg.L2Banks
	}
	if cfg.DRAMChannels > 0 {
		ucfg.Channels = cfg.DRAMChannels
	}
	s.unc = uncore.New(ucfg, s.net)

	clock := sim.MHz(cfg.CoreMHz)
	for i := 0; i < cfg.Cores; i++ {
		s.procs = append(s.procs, cpu.New(i, s.net.ClusterOf(i), cpu.Config{
			Clock:         clock,
			StoreBuffer:   cfg.StoreBuffer,
			InstrPerIMiss: cfg.InstrPerIMiss,
			IMissPenalty:  cfg.IMissPenalty,
		}))
	}
	switch cfg.Model {
	case CC:
		ccfg := coher.DefaultConfig()
		ccfg.PrefetchDepth = cfg.PrefetchDepth
		ccfg.WriteAllocate = !cfg.NoWriteAllocate
		ccfg.SnoopFilter = cfg.SnoopFilter
		s.dom = coher.NewDomain(ccfg, s.unc, s.procs)
	case STR:
		scfg := stream.DefaultConfig()
		scfg.DMAOutstanding = cfg.DMAOutstanding
		for i := 0; i < cfg.Cores; i++ {
			s.strs = append(s.strs, stream.New(i, s.net.ClusterOf(i), scfg, s.unc))
		}
	case INC:
		s.inc = incoher.NewDomain(incoher.DefaultConfig(), s.unc, s.procs)
	default:
		panic("core: unknown model")
	}
	if cfg.CycleLedger {
		s.attachLedger()
	}
	if cfg.TxnTrace != nil {
		s.attachTxnTrace(cfg.TxnTrace)
	}
	return s
}

// attachTxnTrace arms transaction tracing: every memory-system layer
// shares one Tracer, mirroring attachLedger (model code runs
// single-threaded in event order, so the shared tracer needs no locks).
func (s *System) attachTxnTrace(t *txntrace.Tracer) {
	s.unc.SetTxnTrace(t)
	s.net.SetTxnTrace(t)
	switch s.cfg.Model {
	case CC:
		s.dom.SetTxnTrace(t)
	case STR:
		for _, m := range s.strs {
			m.SetTxnTrace(t)
		}
	case INC:
		s.inc.SetTxnTrace(t)
	}
}

// attachLedger arms the cycle-accounting layer: one ledger per core and
// one shared set of latency histograms across every memory-system layer.
func (s *System) attachLedger() {
	s.lat = &ledger.Latency{}
	for _, p := range s.procs {
		p.SetLedger(&ledger.Ledger{})
	}
	s.unc.SetLatency(s.lat)
	s.net.SetLatency(s.lat)
	switch s.cfg.Model {
	case CC:
		s.dom.SetLatency(s.lat)
	case STR:
		for _, m := range s.strs {
			m.SetLatency(s.lat)
		}
	case INC:
		s.inc.SetLatency(s.lat)
	}
}

// Config returns the machine configuration.
func (s *System) Config() Config { return s.cfg }

// Abort requests cooperative cancellation of a running simulation (the
// per-job watchdog calls it from a timer goroutine). The engine acts on
// it only at a dispatch boundary inside sim.Engine.Run, unwinding Run
// with a typed *sim.AbortError carrying a progress dump; once the event
// loop has returned and the report is being finalized, Abort is a no-op
// (see DESIGN.md). Safe to call from any goroutine, any number of times;
// the first reason wins.
func (s *System) Abort(reason string) { s.eng.Abort(reason) }

// Model returns the memory model.
func (s *System) Model() Model { return s.cfg.Model }

// Cores returns the core count.
func (s *System) Cores() int { return s.cfg.Cores }

// AddressSpace returns the global address allocator for workload data.
func (s *System) AddressSpace() *mem.AddressSpace { return s.as }

// Domain returns the coherence domain (CC model only; nil otherwise).
func (s *System) Domain() *coher.Domain { return s.dom }

// StreamMem returns core i's streaming first level (STR model only).
func (s *System) StreamMem(i int) *stream.Mem { return s.strs[i] }

// Incoherent returns the incoherent-cache domain (INC model only).
func (s *System) Incoherent() *incoher.Domain { return s.inc }

// Uncore returns the shared hierarchy.
func (s *System) Uncore() *uncore.Uncore { return s.unc }

// SetICacheProfile lets a workload's Setup configure the analytic
// I-cache model before execution.
func (s *System) SetICacheProfile(instrPerMiss uint64) {
	s.cfg.InstrPerIMiss = instrPerMiss
	for _, p := range s.procs {
		p.SetICache(instrPerMiss, s.cfg.IMissPenalty)
	}
}

// Run executes the workload: Setup, concurrent per-core Run bodies, and
// Verify. It returns the measurement report and the verification error,
// if any.
//
// Run is the recovery boundary of a simulation: a panic anywhere in
// Setup, model or workload code — including the engine's typed failures
// (deadlock, livelock past MaxSimTime, Abort, a task-goroutine panic;
// see sim/abort.go) — is caught here and returned as the error, with
// the parked task goroutines drained so a failed run leaks nothing.
// sim.RunError values come back unwrapped, so callers can errors.As
// them for the engine-state snapshot. Calling Run twice still panics:
// that is a caller bug, not a simulation failure.
func (s *System) Run(w Workload) (rep *Report, err error) {
	if s.ran {
		panic("core: System.Run called twice; build a fresh System per run")
	}
	s.ran = true
	defer func() {
		r := recover()
		s.eng.Shutdown()
		if r == nil {
			return
		}
		rep = nil
		if rerr, ok := r.(error); ok {
			err = rerr
			return
		}
		err = &RunPanicError{Value: r}
	}()
	w.Setup(s)
	for i := 0; i < s.cfg.Cores; i++ {
		name := fmt.Sprintf("core%d", i)
		p := s.procs[i]
		p.SetTracer(s.cfg.Trace)
		switch s.cfg.Model {
		case CC:
			p.BindMem(s.dom.Mem(i))
		case STR:
			p.BindMem(s.strs[i])
		case INC:
			p.BindMem(s.inc.Mem(i))
		}
		// A workload that can run this core as a state machine gets an
		// inline task (zero goroutine switches per event); currently only
		// the streaming model has an inline finish sequence, so other
		// models stay goroutine-backed even if a body is offered.
		var body sim.Runnable
		if iw, ok := w.(InlineWorkload); ok && s.cfg.Model == STR {
			body = iw.InlineBody(p)
		}
		if body != nil {
			p.BindTask(s.eng.SpawnInline(name, 0,
				&inlineCore{body: body, fin: s.strs[i].NewFinish(p)}))
			continue
		}
		s.eng.Spawn(name, 0, func(task *sim.Task) {
			p.BindTask(task)
			w.Run(p)
			p.Finish()
		})
	}
	if s.cfg.Model == STR {
		for _, m := range s.strs {
			m.Spawn(s.eng)
		}
	}
	if s.cfg.Probe != nil {
		s.attachProbe(s.cfg.Probe)
		s.eng.SetEpoch(s.cfg.Probe.Interval(), s.cfg.Probe.Tick)
	}
	s.eng.Run()
	return s.report(), w.Verify()
}

package core

import (
	"testing"
)

// TestDeterminism: the simulator must be perfectly repeatable — same
// workload, same configuration, same wall time and counters. The engine
// orders same-time events by task id and all model state is engine-
// serialized, so any divergence is a scheduling bug.
func TestDeterminism(t *testing.T) {
	for _, model := range []Model{CC, STR} {
		run := func() *Report {
			cfg := DefaultConfig(model, 8)
			if model == CC {
				cfg.PrefetchDepth = 2 // CC-only knob; Validate rejects it elsewhere
			}
			sys := New(cfg)
			rep, err := sys.Run(newCopyKernel(32 * 1024))
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		a, b := run(), run()
		if a.Wall != b.Wall {
			t.Errorf("%v: wall differs across runs: %v vs %v", model, a.Wall, b.Wall)
		}
		if a.Instructions != b.Instructions {
			t.Errorf("%v: instructions differ: %d vs %d", model, a.Instructions, b.Instructions)
		}
		if a.DRAM != b.DRAM {
			t.Errorf("%v: DRAM stats differ: %+v vs %+v", model, a.DRAM, b.DRAM)
		}
		if a.L1 != b.L1 {
			t.Errorf("%v: L1 stats differ: %+v vs %+v", model, a.L1, b.L1)
		}
		if a.Energy != b.Energy {
			t.Errorf("%v: energy differs: %+v vs %+v", model, a.Energy, b.Energy)
		}
	}
}

// TestBreakdownNeverExceedsWall: per-core busy time cannot exceed the
// run's wall time (each core's buckets partition its own timeline).
func TestBreakdownNeverExceedsWall(t *testing.T) {
	for _, model := range []Model{CC, STR} {
		sys := New(DefaultConfig(model, 4))
		rep, err := sys.Run(newCopyKernel(32 * 1024))
		if err != nil {
			t.Fatal(err)
		}
		for i, bd := range rep.PerCore {
			if bd.Total() > rep.Wall {
				t.Errorf("%v core %d: busy %v exceeds wall %v", model, i, bd.Total(), rep.Wall)
			}
		}
	}
}

// TestEnergyAccountingConsistent: component energies are non-negative
// and the DRAM component moves with DRAM traffic.
func TestEnergyAccountingConsistent(t *testing.T) {
	small := New(DefaultConfig(CC, 2))
	repS, err := small.Run(newCopyKernel(8 * 1024))
	if err != nil {
		t.Fatal(err)
	}
	big := New(DefaultConfig(CC, 2))
	repB, err := big.Run(newCopyKernel(64 * 1024))
	if err != nil {
		t.Fatal(err)
	}
	if repB.Energy.DRAM <= repS.Energy.DRAM {
		t.Error("8x the data should cost more DRAM energy")
	}
	for _, e := range []float64{repS.Energy.Core, repS.Energy.ICache, repS.Energy.DCache,
		repS.Energy.Network, repS.Energy.L2, repS.Energy.DRAM} {
		if e < 0 {
			t.Errorf("negative energy component: %+v", repS.Energy)
		}
	}
}

package core

import (
	"fmt"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/syncprim"
)

// copyKernel is a toy streaming workload: each core copies a disjoint
// slab of a shared array, with a barrier at the end. It has a CC and an
// STR path, does real data movement in Go memory, and verifies output.
type copyKernel struct {
	n            int // 4-byte elements
	instrPerElem uint64
	src          []uint32
	dst          []uint32
	srcR         mem.Region
	dstR         mem.Region
	barrier      *syncprim.Barrier
	cores        int
}

func newCopyKernel(n int) *copyKernel { return &copyKernel{n: n, instrPerElem: 1} }

func (k *copyKernel) Name() string { return "copy" }

func (k *copyKernel) Setup(sys *System) {
	k.cores = sys.Cores()
	k.src = make([]uint32, k.n)
	k.dst = make([]uint32, k.n)
	for i := range k.src {
		k.src[i] = uint32(i)*2654435761 + 1
	}
	k.srcR = sys.AddressSpace().AllocArray("src", k.n, 4)
	k.dstR = sys.AddressSpace().AllocArray("dst", k.n, 4)
	k.barrier = syncprim.NewBarrier("done", k.cores)
}

func (k *copyKernel) Run(p *cpu.Proc) {
	lo := k.n * p.ID() / k.cores
	hi := k.n * (p.ID() + 1) / k.cores
	if sm, ok := p.Mem().(*stream.Mem); ok {
		k.runSTR(p, sm, lo, hi)
	} else {
		k.runCC(p, lo, hi)
	}
	k.barrier.Wait(p)
}

func (k *copyKernel) runCC(p *cpu.Proc, lo, hi int) {
	const block = 1024
	for b := lo; b < hi; b += block {
		e := b + block
		if e > hi {
			e = hi
		}
		n := uint64(e - b)
		p.LoadN(k.srcR.Index(b, 4), 4, n)
		for i := b; i < e; i++ {
			k.dst[i] = k.src[i]
		}
		p.Work(n * k.instrPerElem)
		p.StoreN(k.dstR.Index(b, 4), 4, n)
	}
}

func (k *copyKernel) runSTR(p *cpu.Proc, sm *stream.Mem, lo, hi int) {
	const block = 1024 // elements; 4KB per buffer, double-buffered
	ls := sm.LocalStore()
	ls.Alloc("in0", block*4)
	ls.Alloc("in1", block*4)
	ls.Alloc("out0", block*4)
	ls.Alloc("out1", block*4)
	type blk struct{ b, e int }
	var blocks []blk
	for b := lo; b < hi; b += block {
		e := b + block
		if e > hi {
			e = hi
		}
		blocks = append(blocks, blk{b, e})
	}
	// Double-buffered: the next block's get is in flight while the
	// current block computes.
	getTag := sm.Get(p, k.srcR.Index(blocks[0].b, 4), uint64(blocks[0].e-blocks[0].b)*4)
	for i, blkI := range blocks {
		cur := getTag
		if i+1 < len(blocks) {
			nb := blocks[i+1]
			getTag = sm.Get(p, k.srcR.Index(nb.b, 4), uint64(nb.e-nb.b)*4)
		}
		sm.Wait(p, cur)
		n := uint64(blkI.e - blkI.b)
		sm.LSLoadN(p, n)
		for j := blkI.b; j < blkI.e; j++ {
			k.dst[j] = k.src[j]
		}
		p.Work(n * k.instrPerElem)
		sm.LSStoreN(p, n)
		putTag := sm.Put(p, k.dstR.Index(blkI.b, 4), n*4)
		if i == len(blocks)-1 {
			sm.Wait(p, putTag)
		}
	}
}

func (k *copyKernel) Verify() error {
	for i := range k.src {
		if k.dst[i] != k.src[i] {
			return fmt.Errorf("dst[%d] = %d, want %d", i, k.dst[i], k.src[i])
		}
	}
	return nil
}

func runCopy(t *testing.T, model Model, cores int) *Report {
	t.Helper()
	sys := New(DefaultConfig(model, cores))
	rep, err := sys.Run(newCopyKernel(64 * 1024))
	if err != nil {
		t.Fatalf("%v/%d verify: %v", model, cores, err)
	}
	return rep
}

func TestCopyKernelBothModels(t *testing.T) {
	cc := runCopy(t, CC, 4)
	str := runCopy(t, STR, 4)
	if cc.Wall == 0 || str.Wall == 0 {
		t.Fatal("zero wall time")
	}
	// The copy writes 256 KB and reads 256 KB. CC with write-allocate
	// also refills the output stream: CC read traffic ~2x STR's.
	if cc.DRAM.ReadBytes < str.DRAM.ReadBytes*3/2 {
		t.Errorf("CC reads %d, STR reads %d: expected superfluous refills in CC",
			cc.DRAM.ReadBytes, str.DRAM.ReadBytes)
	}
	if str.DMAGetBytes == 0 || str.DMAPutBytes == 0 {
		t.Error("STR moved no DMA traffic")
	}
	if cc.Energy.Total() <= 0 || str.Energy.Total() <= 0 {
		t.Error("energy not computed")
	}
	// STR energy should be no worse than CC for this no-reuse kernel.
	if str.Energy.Total() >= cc.Energy.Total() {
		t.Errorf("STR energy %.3g J >= CC %.3g J; refill elimination should save energy",
			str.Energy.Total(), cc.Energy.Total())
	}
}

func TestCopyScalesWithCores(t *testing.T) {
	// The bare copy is bandwidth-bound on the 1.6 GB/s default channel,
	// so more cores may not help much — but they must never hurt.
	for _, model := range []Model{CC, STR} {
		t1 := runCopy(t, model, 1).Wall
		t4 := runCopy(t, model, 4).Wall
		if t4 > t1 {
			t.Errorf("%v: 4 cores (%v) slower than 1 (%v)", model, t4, t1)
		}
	}
	// A compute-heavy variant is core-bound and must scale well.
	runHeavy := func(model Model, cores int) sim.Time {
		cfg := DefaultConfig(model, cores)
		if model == CC {
			cfg.PrefetchDepth = 4 // CC-only knob; Validate rejects it elsewhere
		}
		sys := New(cfg)
		k := newCopyKernel(64 * 1024)
		k.instrPerElem = 64
		rep, err := sys.Run(k)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Wall
	}
	for _, model := range []Model{CC, STR} {
		t1 := runHeavy(model, 1)
		t4 := runHeavy(model, 4)
		if float64(t4) > float64(t1)/2.5 {
			t.Errorf("%v compute-bound: 4 cores (%v) not >=2.5x faster than 1 (%v)", model, t4, t1)
		}
	}
}

func TestRunTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sys := New(DefaultConfig(CC, 1))
	if _, err := sys.Run(newCopyKernel(1024)); err != nil {
		t.Fatal(err)
	}
	sys.Run(newCopyKernel(1024)) //nolint:errcheck // must panic
}

func TestReportMetrics(t *testing.T) {
	rep := runCopy(t, CC, 2)
	if rep.InstrPerL1Miss() <= 0 {
		t.Error("InstrPerL1Miss not computed")
	}
	if rep.OffChipBandwidth() <= 0 {
		t.Error("OffChipBandwidth not computed")
	}
	if rep.WallCycles() == 0 {
		t.Error("WallCycles zero")
	}
	if got := rep.String(); len(got) == 0 {
		t.Error("empty report string")
	}
	if err := checkBreakdownSane(rep); err != nil {
		t.Error(err)
	}
}

func checkBreakdownSane(r *Report) error {
	for i, bd := range r.PerCore {
		if bd.Total() == 0 {
			return fmt.Errorf("core %d has empty breakdown", i)
		}
	}
	return nil
}

func TestINCModelRunsCopyKernel(t *testing.T) {
	sys := New(DefaultConfig(INC, 4))
	rep, err := sys.Run(newCopyKernel(32 * 1024))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model != INC {
		t.Errorf("model = %v", rep.Model)
	}
	// No coherence protocol: no snoop lookups anywhere.
	if rep.L1.SnoopLookups != 0 {
		t.Errorf("INC saw %d snoop lookups", rep.L1.SnoopLookups)
	}
	if rep.Wall == 0 {
		t.Error("zero wall")
	}
}

func TestUtilizationFieldsPopulated(t *testing.T) {
	sys := New(DefaultConfig(CC, 4))
	rep, err := sys.Run(newCopyKernel(64 * 1024))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChannelUtil <= 0 || rep.ChannelUtil > 1 {
		t.Errorf("channel utilization %v out of range", rep.ChannelUtil)
	}
	if rep.L2PortUtil <= 0 || rep.AvgBusUtil <= 0 {
		t.Errorf("utilizations: l2=%v bus=%v", rep.L2PortUtil, rep.AvgBusUtil)
	}
}

func TestL2BankAblationThroughConfig(t *testing.T) {
	cfg := DefaultConfig(CC, 8)
	cfg.L2Banks = 2
	sys := New(cfg)
	if sys.Uncore().L2Banks() != 2 {
		t.Fatalf("banks = %d", sys.Uncore().L2Banks())
	}
	if _, err := sys.Run(newCopyKernel(32 * 1024)); err != nil {
		t.Fatal(err)
	}
	// Both banks must have seen traffic.
	for i := 0; i < 2; i++ {
		st := sys.Uncore().L2Bank(i).Stats()
		if st.Reads+st.Writes == 0 {
			t.Errorf("bank %d idle", i)
		}
	}
}

func TestMultiChannelConfig(t *testing.T) {
	cfg := DefaultConfig(CC, 8)
	cfg.DRAMChannels = 2
	sys := New(cfg)
	rep, err := sys.Run(newCopyKernel(64 * 1024))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Uncore().Channels() != 2 {
		t.Fatalf("channels = %d", sys.Uncore().Channels())
	}
	if rep.DRAM.TotalBytes() == 0 {
		t.Error("no aggregate DRAM traffic recorded")
	}
}

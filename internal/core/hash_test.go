package core

import (
	"testing"

	"repro/internal/probe"
	"repro/internal/sim"
)

// TestNormalizeStripsObservers: two configs differing only in run-scoped
// observers normalize to the same value, so they memoize and hash alike.
func TestNormalizeStripsObservers(t *testing.T) {
	plain := DefaultConfig(CC, 4)
	observed := plain
	observed.Probe = probe.NewRecorder(sim.Microsecond)
	observed.FlightRecorder = 256
	if observed.Normalize() != plain.Normalize() {
		t.Fatal("Normalize did not strip run-scoped observers")
	}
	if observed.Normalize().Probe != nil || observed.Normalize().FlightRecorder != 0 {
		t.Fatal("observers survive Normalize")
	}
	// Normalize must not mutate the receiver.
	if observed.Probe == nil || observed.FlightRecorder != 256 {
		t.Fatal("Normalize mutated its receiver")
	}
}

// TestHashDiscriminates pins the key properties of the canonical hash:
// stable for equal inputs, different for any differing machine field,
// workload, dataset scale, or version, and insensitive to observers.
func TestHashDiscriminates(t *testing.T) {
	base := DefaultConfig(CC, 4)
	h := base.Hash("fir", "small", "v1")
	if h2 := base.Hash("fir", "small", "v1"); h2 != h {
		t.Fatalf("hash not stable: %s vs %s", h, h2)
	}
	if len(h) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(h))
	}

	cases := map[string]string{
		"workload": base.Hash("fem", "small", "v1"),
		"scale":    base.Hash("fir", "paper", "v1"),
		"version":  base.Hash("fir", "small", "v2"),
	}
	other := base
	other.Cores = 8
	cases["cores"] = other.Hash("fir", "small", "v1")
	other = base
	other.Model = STR
	cases["model"] = other.Hash("fir", "small", "v1")
	other = base
	other.DRAMBandwidthMBps = 6400
	cases["bandwidth"] = other.Hash("fir", "small", "v1")
	other = base
	other.PrefetchDepth = 4
	cases["prefetch"] = other.Hash("fir", "small", "v1")
	seen := map[string]string{h: "base"}
	for what, hh := range cases {
		if prev, dup := seen[hh]; dup {
			t.Fatalf("hash collision between %s and %s", what, prev)
		}
		seen[hh] = what
	}

	observed := base
	observed.Probe = probe.NewRecorder(sim.Microsecond)
	observed.FlightRecorder = 64
	if observed.Hash("fir", "small", "v1") != h {
		t.Fatal("observers perturb the hash")
	}
}

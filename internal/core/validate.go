package core

import (
	"errors"
	"fmt"
)

// FieldError reports one invalid Config field. Validate returns all of
// them joined, so a caller fixing a hand-built config sees every problem
// at once, and the CLIs can map fields back to flag names.
type FieldError struct {
	Field  string // Config field name, e.g. "Cores"
	Reason string
}

func (e *FieldError) Error() string { return "core: config." + e.Field + ": " + e.Reason }

// FieldErrors extracts every *FieldError from a Validate result (which
// is an errors.Join of them). Nil input yields nil.
func FieldErrors(err error) []*FieldError {
	if err == nil {
		return nil
	}
	var out []*FieldError
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		for _, e := range joined.Unwrap() {
			out = append(out, FieldErrors(e)...)
		}
		return out
	}
	var fe *FieldError
	if errors.As(err, &fe) {
		out = append(out, fe)
	}
	return out
}

// RunPanicError wraps a panic recovered by System.Run whose value was
// not already an error — a Setup or Verify bug on the driving goroutine.
// (Task-goroutine panics arrive as *sim.TaskPanicError instead.)
type RunPanicError struct{ Value any }

func (e *RunPanicError) Error() string { return fmt.Sprintf("core: run panicked: %v", e.Value) }

// Validate checks the configuration before any machine is assembled —
// and therefore before any goroutine spawns: a config error must be a
// typed, synchronous result, never a panic out of a half-built engine.
// It returns nil or an errors.Join of *FieldError values covering every
// invalid field.
func (c Config) Validate() error {
	var errs []error
	add := func(field, format string, args ...any) {
		errs = append(errs, &FieldError{Field: field, Reason: fmt.Sprintf(format, args...)})
	}
	switch c.Model {
	case CC, STR, INC:
	default:
		add("Model", "unknown model %d (want CC, STR or INC)", int(c.Model))
	}
	if c.Cores <= 0 || c.Cores > 64 {
		add("Cores", "must be in 1..64 (got %d)", c.Cores)
	}
	if c.CoreMHz == 0 {
		add("CoreMHz", "must be positive; start from DefaultConfig")
	}
	if c.PrefetchDepth < 0 {
		add("PrefetchDepth", "must be non-negative (got %d)", c.PrefetchDepth)
	}
	// The prefetcher, store policy and snoop filter live in the CC
	// protocol layer; on other models they would silently do nothing,
	// which is a mistake to report, not to shrug off.
	if c.Model == STR || c.Model == INC {
		if c.PrefetchDepth > 0 {
			add("PrefetchDepth", "only applies to model CC (got model %s)", c.Model)
		}
		if c.NoWriteAllocate {
			add("NoWriteAllocate", "only applies to model CC (got model %s)", c.Model)
		}
		if c.SnoopFilter {
			add("SnoopFilter", "only applies to model CC (got model %s)", c.Model)
		}
	}
	for _, n := range []struct {
		field string
		v     int
	}{
		{"L2Banks", c.L2Banks},
		{"DRAMChannels", c.DRAMChannels},
		{"CoresPerCluster", c.CoresPerCluster},
		{"DMAOutstanding", c.DMAOutstanding},
		{"StoreBuffer", c.StoreBuffer},
	} {
		if n.v < 0 {
			add(n.field, "must be non-negative (got %d; 0 means the Table 2 default)", n.v)
		}
	}
	if c.FlightRecorder < 0 {
		add("FlightRecorder", "must be non-negative (got %d; 0 disables the recorder)", c.FlightRecorder)
	}
	if len(errs) == 0 {
		return nil
	}
	return errors.Join(errs...)
}

package core

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/dma"
	"repro/internal/dram"
	"repro/internal/energy"
	"repro/internal/ledger"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/uncore"
)

// Report is the measurement record of one run: the Figure 2 execution
// breakdown, traffic (Figure 3), energy (Figure 4) and the raw counters
// behind the paper's tables.
type Report struct {
	Model   Model
	Cores   int
	CoreMHz uint64

	// Wall is the execution time: the latest core finish time.
	Wall sim.Time
	// PerCore is each core's execution-time decomposition.
	PerCore []cpu.Breakdown
	// Breakdown is the decomposition of the critical path, scaled so the
	// buckets are averages across cores (the stacked bars of Figure 2
	// show per-core averages normalized to the sequential run).
	Breakdown cpu.Breakdown

	Instructions  uint64
	TotalLoads    uint64 // load instructions across cores
	TotalStores   uint64 // store instructions across cores
	LocalAccesses uint64 // always-hitting stack/temporary accesses

	L1   cache.Stats // aggregate CC L1s, or the STR 8 KB caches
	L2   cache.Stats
	DRAM dram.Stats
	Net  noc.Stats
	Unc  uncore.Stats

	// CC-only protocol counters (zero for STR).
	ReadMisses, WriteMisses, Upgrades, PFSMisses uint64
	C2CCluster, C2CRemote                        uint64
	L1WritebacksL2                               uint64
	PrefetchFills, PrefetchUseless               uint64
	GatherFlushes                                uint64
	FilteredSnoops                               uint64

	// STR-only counters (zero for CC).
	DMACommands uint64
	DMAGetBytes uint64
	DMAPutBytes uint64
	LSAccesses  uint64

	// Mean service times, comparable field-for-field across models: the
	// miss latencies are the first-level demand misses of whichever model
	// ran (CC/INC L1s, or the STR 8 KB cache), the DMA latencies are
	// whole command queue-to-completion times (STR only, zero for CC).
	// Always accumulated — these are sums over counters the models keep
	// anyway, independent of CycleLedger.
	AvgReadMissLatency  sim.Time
	AvgWriteMissLatency sim.Time
	AvgDMAGetLatency    sim.Time
	AvgDMAPutLatency    sim.Time

	// Cycles and Latency are the cycle-accounting layer's blocks,
	// present only when Config.CycleLedger was set: every core cycle
	// attributed to the ledger taxonomy (conserving the wall time
	// exactly), and the memory system's service-time distributions.
	Cycles  *ledger.Summary        `json:",omitempty"`
	Latency *ledger.LatencySummary `json:",omitempty"`

	Counts energy.Counts
	Energy energy.Breakdown

	// Resource utilizations over the run (busy time / wall time):
	// useful for spotting which structure binds a configuration.
	ChannelUtil float64 // DRAM data pins
	L2PortUtil  float64
	AvgBusUtil  float64 // mean across cluster buses

	// Engine is the event engine's self-metrics for the run: fast-path
	// Sync hit rate, dispatch counts, heap pressure. A simulator-health
	// record rather than a model measurement.
	Engine sim.Metrics
	// Servers aggregates calendar-maintenance counters across the
	// interconnect, L2-port, DRAM channel and bank servers.
	Servers sim.ServerMetrics
}

// report gathers counters after the engine has drained.
func (s *System) report() *Report {
	r := &Report{
		Model:   s.cfg.Model,
		Cores:   s.cfg.Cores,
		CoreMHz: s.cfg.CoreMHz,
		L2:      s.unc.L2Stats(),
		DRAM:    s.unc.DRAMStats(),
		Net:     s.net.Stats(),
		Unc:     s.unc.Stats(),
	}
	for _, p := range s.procs {
		bd := p.Breakdown()
		r.PerCore = append(r.PerCore, bd)
		if ft := p.FinishTime(); ft > r.Wall {
			r.Wall = ft
		}
		r.Instructions += p.Stats().Instructions
		r.TotalLoads += p.Stats().Loads
		r.TotalStores += p.Stats().Stores
		r.LocalAccesses += p.Stats().LocalAccesses
		r.Breakdown.Useful += bd.Useful
		r.Breakdown.Sync += bd.Sync
		r.Breakdown.LoadStall += bd.LoadStall
		r.Breakdown.StoreStall += bd.StoreStall
	}
	// Average the buckets per core: the total then reads as "time" on
	// the same scale as Wall for a balanced workload.
	n := sim.Time(uint64(s.cfg.Cores))
	r.Breakdown.Useful /= n
	r.Breakdown.Sync /= n
	r.Breakdown.LoadStall /= n
	r.Breakdown.StoreStall /= n

	switch s.cfg.Model {
	case CC:
		st := s.dom.Stats()
		r.ReadMisses = st.ReadMisses
		r.WriteMisses = st.WriteMisses
		r.Upgrades = st.Upgrades
		r.PFSMisses = st.PFSMisses
		r.C2CCluster = st.C2CCluster
		r.C2CRemote = st.C2CRemote
		r.L1WritebacksL2 = st.L1WritebacksL2
		r.PrefetchFills = st.PrefetchFills
		r.PrefetchUseless = st.PrefetchUseless
		r.GatherFlushes = st.GatherFlushes
		r.FilteredSnoops = st.FilteredSnoops
		r.AvgReadMissLatency = st.AvgReadMissLatency()
		r.AvgWriteMissLatency = st.AvgWriteMissLatency()
	case INC:
		st := s.inc.Stats()
		r.AvgReadMissLatency = st.AvgReadMissLatency()
		r.AvgWriteMissLatency = st.AvgWriteMissLatency()
	case STR:
		var ss stream.Stats
		var da dma.Stats
		for _, m := range s.strs {
			ds := m.DMA().Stats()
			da.Add(ds)
			r.DMACommands += ds.Commands
			r.DMAGetBytes += ds.GetBytes
			r.DMAPutBytes += ds.PutBytes
			ls := m.LocalStore().Stats()
			r.LSAccesses += ls.Reads + ls.Writes + ls.DMABeats
			ss.Add(m.Stats())
		}
		r.AvgReadMissLatency = ss.AvgReadMissLatency()
		r.AvgWriteMissLatency = ss.AvgWriteMissLatency()
		r.AvgDMAGetLatency = da.AvgGetLatency()
		r.AvgDMAPutLatency = da.AvgPutLatency()
	}
	r.L1 = s.l1Stats()
	r.Engine = s.eng.Metrics()
	s.net.AddServerMetrics(&r.Servers)
	s.unc.AddServerMetrics(&r.Servers)
	r.Counts = s.energyCounts(r)
	r.Energy = energy.Default90nm().Compute(r.Counts, r.Wall, s.cfg.Cores)
	if r.Wall > 0 {
		r.ChannelUtil = s.unc.AvgChannelUtilization(r.Wall)
		r.L2PortUtil = float64(s.unc.L2PortBusy()) / float64(r.Wall)
		r.AvgBusUtil = s.net.AvgBusUtilization(r.Wall)
	}
	if s.cfg.CycleLedger {
		leds := make([]*ledger.Ledger, len(s.procs))
		finish := make([]sim.Time, len(s.procs))
		for i, p := range s.procs {
			leds[i] = p.Ledger()
			finish[i] = p.FinishTime()
		}
		r.Cycles = ledger.NewSummary(r.Wall, leds, finish)
		r.Latency = s.lat.Summary()
	}
	return r
}

func (s *System) energyCounts(r *Report) energy.Counts {
	clock := sim.MHz(s.cfg.CoreMHz)
	totalCycles := uint64(s.cfg.Cores) * clock.ToCycles(r.Wall)
	idle := uint64(0)
	if totalCycles > r.Instructions {
		idle = totalCycles - r.Instructions
	}
	c := energy.Counts{
		Instructions:    r.Instructions,
		CoreCycles:      r.Instructions,
		IdleCycles:      idle,
		ICacheAccesses:  r.Instructions,
		BusDataBytes:    r.Net.BusDataBytes,
		BusControl:      r.Net.BusControl,
		XbarBytes:       r.Net.XbarBytes,
		XbarMsgs:        r.Net.XbarMsgs,
		L2Accesses:      r.L2.Reads + r.L2.Writes + r.L2.Fills,
		DRAMBytes:       r.DRAM.ReadBytes + r.DRAM.WriteBytes,
		DRAMActivations: r.DRAM.RowMisses,
	}
	switch s.cfg.Model {
	case CC, INC:
		c.L1Accesses = r.L1.Reads + r.L1.Writes + r.L1.Fills + r.LocalAccesses
		c.L1Snoops = r.L1.SnoopLookups
	case STR:
		// Stack/temporary traffic goes through the 8 KB cache.
		c.SmallAccesses = r.L1.Reads + r.L1.Writes + r.L1.Fills + r.LocalAccesses
		c.LSAccesses = r.LSAccesses
	}
	return c
}

// WallCycles returns the execution time in core cycles.
func (r *Report) WallCycles() uint64 {
	return sim.MHz(r.CoreMHz).ToCycles(r.Wall)
}

// OffChipBandwidth returns the average off-chip traffic rate in MB/s
// (10^6 bytes per second), the Table 3 metric.
func (r *Report) OffChipBandwidth() float64 {
	if r.Wall == 0 {
		return 0
	}
	return float64(r.DRAM.TotalBytes()) / r.Wall.Seconds() / 1e6
}

// L1MissRate returns L1 data misses per load/store instruction — the
// paper's Table 3 metric. (The tag arrays are consulted once per line
// on bulk sequential accesses, so the raw tag-array miss ratio would
// overstate the per-instruction rate.)
func (r *Report) L1MissRate() float64 {
	ops := r.TotalLoads + r.TotalStores + r.LocalAccesses
	if ops == 0 {
		return 0
	}
	return float64(r.L1.Misses()) / float64(ops)
}

// L2MissRate returns the fraction of L2 accesses that missed.
func (r *Report) L2MissRate() float64 { return r.L2.MissRate() }

// InstrPerL1Miss returns total instructions per L1 data miss (Table 3).
func (r *Report) InstrPerL1Miss() float64 {
	m := r.L1.Misses()
	if m == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(m)
}

// CyclesPerL2Miss returns wall cycles per L2 data miss (Table 3): how
// often, in single-clock cycles, the system as a whole takes an L2 miss.
func (r *Report) CyclesPerL2Miss() float64 {
	m := r.L2.Misses()
	if m == 0 {
		return 0
	}
	return float64(r.WallCycles()) / float64(m)
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d cores @ %d MHz: %v", r.Model, r.Cores, r.CoreMHz, r.Wall)
	if r.Instructions >= 10_000_000 {
		fmt.Fprintf(&b, " (%d Minstr", r.Instructions/1_000_000)
	} else {
		fmt.Fprintf(&b, " (%d Kinstr", r.Instructions/1_000)
	}
	fmt.Fprintf(&b, ", %.1f MB/s off-chip)\n", r.OffChipBandwidth())
	tot := float64(r.Breakdown.Total())
	if tot > 0 {
		fmt.Fprintf(&b, "  useful %.1f%%  sync %.1f%%  load %.1f%%  store %.1f%%\n",
			100*float64(r.Breakdown.Useful)/tot,
			100*float64(r.Breakdown.Sync)/tot,
			100*float64(r.Breakdown.LoadStall)/tot,
			100*float64(r.Breakdown.StoreStall)/tot)
	}
	fmt.Fprintf(&b, "  off-chip: %d KB read, %d KB written; energy %.3g mJ\n",
		r.DRAM.ReadBytes/1024, r.DRAM.WriteBytes/1024, r.Energy.Total()*1e3)
	fmt.Fprintf(&b, "  utilization: dram %.0f%%  l2 port %.0f%%  buses %.0f%%\n",
		100*r.ChannelUtil, 100*r.L2PortUtil, 100*r.AvgBusUtil)
	return b.String()
}

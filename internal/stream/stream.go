// Package stream implements the streaming memory model (Section 3.3):
// each core's first-level data storage is split between a 24 KB local
// store and an 8 KB 2-way cache used for stack data and global
// variables. Data moves with explicit DMA transfers (internal/dma); the
// small cache is not kept coherent — the streaming model has no
// coherence hardware, and software is responsible for sharing
// discipline, exactly as the paper requires.
package stream

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/dma"
	"repro/internal/ledger"
	"repro/internal/lstore"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/txntrace"
	"repro/internal/uncore"
)

// Config sizes the streaming first level.
type Config struct {
	LocalStoreSize uint64
	CacheSize      uint64
	CacheAssoc     int
	// DMAOutstanding overrides the engine's concurrent-access window
	// (0 = the paper's 16).
	DMAOutstanding int
}

// DefaultConfig is the paper's Table 2 streaming configuration.
func DefaultConfig() Config {
	return Config{
		LocalStoreSize: lstore.DefaultSize,
		CacheSize:      8 * 1024,
		CacheAssoc:     2,
	}
}

// Mem is the per-core cpu.ProcMem of the streaming model. Workloads
// type-assert p.Mem() to *stream.Mem to reach the local store and DMA
// engine.
//
// Sync audit (engine fast path, PR 2): local-store accesses (LSLoadN,
// LSStoreN) and small-cache hits never yield — they touch only per-core
// state. Every remaining Sync precedes a genuinely shared touch: the
// uncore on the miss paths, or the DMA engine's command queue and done
// map, which the engine task mutates concurrently in simulated time.
// None can convert to SetTime/Advance.
type Mem struct {
	core    int
	cluster int
	unc     *uncore.Uncore
	cch     *cache.Cache // the 8 KB stack/globals cache
	ls      *lstore.Store
	eng     *dma.Engine
	stats   Stats
	lat     *ledger.Latency  // nil = latency histograms disabled
	txn     *txntrace.Tracer // nil = transaction tracing disabled
}

// Stats counts the 8 KB cache's miss service, mirroring the coherent
// model's accumulators so CC and STR reports are comparable
// field-for-field (the latency fields are diagnostics, not time series
// — like coher.Stats, they stay out of probe snapshots).
type Stats struct {
	ReadMisses       uint64
	WriteMisses      uint64
	ReadMissLatency  sim.Time
	WriteMissLatency sim.Time
}

// Add accumulates src into s (aggregating per-core first levels).
func (s *Stats) Add(src Stats) {
	s.ReadMisses += src.ReadMisses
	s.WriteMisses += src.WriteMisses
	s.ReadMissLatency += src.ReadMissLatency
	s.WriteMissLatency += src.WriteMissLatency
}

// AvgReadMissLatency returns the mean demand read-miss service time.
func (s Stats) AvgReadMissLatency() sim.Time {
	if s.ReadMisses == 0 {
		return 0
	}
	return s.ReadMissLatency / sim.Time(s.ReadMisses)
}

// AvgWriteMissLatency returns the mean write-miss service time.
func (s Stats) AvgWriteMissLatency() sim.Time {
	if s.WriteMisses == 0 {
		return 0
	}
	return s.WriteMissLatency / sim.Time(s.WriteMisses)
}

var _ cpu.ProcMem = (*Mem)(nil)
var _ cpu.FlushClasser = (*Mem)(nil)

// New builds the streaming first level for one core. Call Spawn to start
// the DMA engine before running.
func New(core, cluster int, cfg Config, unc *uncore.Uncore) *Mem {
	ls := lstore.New(cfg.LocalStoreSize)
	return &Mem{
		core:    core,
		cluster: cluster,
		unc:     unc,
		cch: cache.New(cache.Config{
			Name:  fmt.Sprintf("strcache%d", core),
			Size:  cfg.CacheSize,
			Assoc: cfg.CacheAssoc,
		}),
		ls:  ls,
		eng: dma.NewWithWindow(fmt.Sprintf("dma%d", core), cluster, unc, ls, cfg.DMAOutstanding),
	}
}

// Spawn starts the DMA engine task.
func (m *Mem) Spawn(eng *sim.Engine) { m.eng.Spawn(eng, 0) }

// LocalStore returns the core's local store.
func (m *Mem) LocalStore() *lstore.Store { return m.ls }

// Cache returns the 8 KB stack/globals cache.
func (m *Mem) Cache() *cache.Cache { return m.cch }

// DMA returns the DMA engine (stats, tests).
func (m *Mem) DMA() *dma.Engine { return m.eng }

// Stats returns the 8 KB cache's miss accounting.
func (m *Mem) Stats() Stats { return m.stats }

// SetLatency attaches the run's service-time histograms to this first
// level and its DMA engine (nil disables recording).
func (m *Mem) SetLatency(l *ledger.Latency) {
	m.lat = l
	m.eng.SetLatency(l)
}

// SetTxnTrace attaches the run's transaction tracer to this first level
// and its DMA engine (nil disables it).
func (m *Mem) SetTxnTrace(t *txntrace.Tracer) {
	m.txn = t
	m.eng.SetTxnTrace(t, m.core)
}

// FlushClass implements cpu.FlushClasser: the Finish-time drain waits on
// the DMA engine, so its ledger class is DMAWait.
func (m *Mem) FlushClass() ledger.Class { return ledger.DMAWait }

// Load implements cpu.ProcMem: a load through the small cache.
func (m *Mem) Load(p *cpu.Proc, a mem.Addr) sim.Time {
	if ln := m.cch.Access(a, false); ln != nil {
		return maxTime(p.Now(), ln.FillDone)
	}
	p.Task().Sync()
	at := p.Now()
	m.txn.Begin(txntrace.ReadMiss, m.core, uint64(a.Line()), at)
	done, _ := m.unc.ReadLine(m.busOut(at), m.cluster, a)
	done = m.unc.Network().BusData(done, m.cluster, mem.LineSize)
	m.txn.End(done)
	m.insert(done, a, cache.Exclusive)
	m.stats.ReadMisses++
	m.stats.ReadMissLatency += done - at
	if m.lat != nil {
		m.lat.ReadMiss.Record(uint64(done - at))
	}
	return done
}

// Store implements cpu.ProcMem: a write-back, write-allocate store
// through the small cache.
func (m *Mem) Store(p *cpu.Proc, a mem.Addr, nbytes uint64) sim.Time {
	if ln := m.cch.Access(a, true); ln != nil {
		ln.State = cache.Modified
		ln.Dirty = true
		return maxTime(p.Now(), ln.FillDone)
	}
	p.Task().Sync()
	at := p.Now()
	m.txn.Begin(txntrace.WriteMiss, m.core, uint64(a.Line()), at)
	done, _ := m.unc.ReadLine(m.busOut(at), m.cluster, a)
	done = m.unc.Network().BusData(done, m.cluster, mem.LineSize)
	m.txn.End(done)
	ln := m.insert(done, a, cache.Modified)
	ln.Dirty = true
	m.stats.WriteMisses++
	m.stats.WriteMissLatency += done - at
	if m.lat != nil {
		m.lat.WriteMiss.Record(uint64(done - at))
	}
	return done
}

// StorePFS implements cpu.ProcMem. The streaming model has no PFS
// instruction; software uses the local store for output data instead, so
// the rare PFS through the small cache behaves as a plain store.
func (m *Mem) StorePFS(p *cpu.Proc, a mem.Addr, nbytes uint64) sim.Time { return m.Store(p, a, nbytes) }

// Flush implements cpu.ProcMem: drain and stop the DMA engine.
func (m *Mem) Flush(p *cpu.Proc) sim.Time {
	p.Task().Sync()
	var t sim.Time = p.Now()
	if last := m.eng.LastTag(); last != 0 {
		if done, ok := m.eng.Done(last); ok {
			t = maxTime(t, done)
		} else {
			// Blocking on the engine moves the clock via Unblock, which
			// the caller cannot see in the returned time; charge the wait
			// here so no cycle escapes the accounting (conservation).
			before := p.Now()
			t = maxTime(t, m.eng.Wait(p.Task(), last))
			if wait := p.Now() - before; wait > 0 {
				p.AddDMAWait(wait)
			}
		}
	}
	m.eng.Stop()
	return t
}

func (m *Mem) busOut(at sim.Time) sim.Time {
	return m.unc.Network().BusControl(at, m.cluster)
}

func (m *Mem) insert(at sim.Time, a mem.Addr, st cache.State) *cache.Line {
	ln, ev := m.cch.Insert(a, st, at)
	if ev.Valid && ev.Dirty {
		t := m.unc.Network().BusData(at, m.cluster, mem.LineSize)
		m.unc.WriteLine(t, m.cluster, ev.Addr, mem.LineSize, true)
	}
	return ln
}

// LSLoadN charges count local-store element reads: one issue cycle each,
// no stalls (the local store is single-cycle).
func (m *Mem) LSLoadN(p *cpu.Proc, count uint64) {
	p.Work(count)
	m.ls.CountRead(count)
}

// LSStoreN charges count local-store element writes.
func (m *Mem) LSStoreN(p *cpu.Proc, count uint64) {
	p.Work(count)
	m.ls.CountWrite(count)
}

// Get queues a DMA transfer of nbytes from global address base into the
// local store and returns its tag. The handful of extra instructions to
// program the transfer is charged to the core ("it often has to execute
// additional instructions to set up DMA transfers").
func (m *Mem) Get(p *cpu.Proc, base mem.Addr, nbytes uint64) dma.Tag {
	p.Work(dmaSetupInstr)
	p.Task().Sync()
	return m.eng.Queue(p.Now(), dma.Get, base, nbytes)
}

// Put queues a DMA transfer of nbytes from the local store to global
// address base.
func (m *Mem) Put(p *cpu.Proc, base mem.Addr, nbytes uint64) dma.Tag {
	p.Work(dmaSetupInstr)
	p.Task().Sync()
	return m.eng.Queue(p.Now(), dma.Put, base, nbytes)
}

// GetStrided queues a strided gather.
func (m *Mem) GetStrided(p *cpu.Proc, base mem.Addr, elemBytes, stride, count uint64) dma.Tag {
	p.Work(dmaSetupInstr)
	p.Task().Sync()
	return m.eng.QueueStrided(p.Now(), dma.Get, base, elemBytes, stride, count)
}

// PutStrided queues a strided scatter.
func (m *Mem) PutStrided(p *cpu.Proc, base mem.Addr, elemBytes, stride, count uint64) dma.Tag {
	p.Work(dmaSetupInstr)
	p.Task().Sync()
	return m.eng.QueueStrided(p.Now(), dma.Put, base, elemBytes, stride, count)
}

// GetIndexed queues an indexed gather. Building the index costs one
// instruction per element on top of the transfer setup.
func (m *Mem) GetIndexed(p *cpu.Proc, addrs []mem.Addr, elemBytes uint64) dma.Tag {
	p.Work(dmaSetupInstr + uint64(len(addrs)))
	p.Task().Sync()
	return m.eng.QueueIndexed(p.Now(), dma.Get, addrs, elemBytes)
}

// Wait blocks the core until the DMA command completes, charging the
// wait to the Sync bucket (Figure 2 counts "wait for DMA" as
// synchronization); the cycle ledger splits it out as DMAWait.
func (m *Mem) Wait(p *cpu.Proc, tag dma.Tag) {
	p.Task().Sync()
	if done, ok := m.eng.Done(tag); ok {
		p.WaitUntilDMA(done)
		return
	}
	before := p.Now()
	done := m.eng.Wait(p.Task(), tag)
	if done > before {
		p.AddDMAWait(p.Now() - before)
	}
}

// dmaSetupInstr is the instruction overhead of programming one DMA
// command.
const dmaSetupInstr = 8

// The methods below split Get/Put/Wait/Flush at their yield points so an
// inline (state machine) core body can replicate them exactly: the
// goroutine versions yield inside the call (Sync, BlockOn), which a
// Runnable's Step must instead express as a return. Each half is named
// for its position relative to the caller's yield.

// QueueSetup charges the DMA-programming instructions of one queue
// operation — the pre-yield half of Get/Put for inline cores, which
// yield where those methods Sync.
func (m *Mem) QueueSetup(p *cpu.Proc) { p.Work(dmaSetupInstr) }

// QueueGet enqueues a sequential get after the caller's yield (the
// post-yield half of Get).
func (m *Mem) QueueGet(p *cpu.Proc, base mem.Addr, nbytes uint64) dma.Tag {
	return m.eng.Queue(p.Now(), dma.Get, base, nbytes)
}

// QueuePut enqueues a sequential put after the caller's yield (the
// post-yield half of Put).
func (m *Mem) QueuePut(p *cpu.Proc, base mem.Addr, nbytes uint64) dma.Tag {
	return m.eng.Queue(p.Now(), dma.Put, base, nbytes)
}

// WaitCheck resolves a DMA wait after the caller's leading yield (the
// body of Wait between its Sync and any block). Exactly one of three
// outcomes:
//   - charge: the tag completed at done; the caller must apply
//     p.ChargeDMAWait(done) and yield once (WaitUntilDMA's sync), after
//     which the wait is over.
//   - block: the caller is registered as the engine's waiter (block
//     label already set); it must yield StatusBlocked and call
//     WaitFinish once woken.
//   - neither: the tag was already collected; the wait is over with no
//     further yield and nothing to charge.
func (m *Mem) WaitCheck(p *cpu.Proc, tag dma.Tag) (done sim.Time, charge, block bool) {
	if done, ok := m.eng.Done(tag); ok {
		return done, true, false
	}
	if _, ok := m.eng.WaitStart(p.Task(), tag); ok {
		return 0, false, false
	}
	p.Task().WillBlockOn(m.eng.WaitLabel(tag))
	return 0, false, true
}

// WaitFinish collects a blocked wait's completion after the caller's
// wake and charges the DMA wait since before (the caller's time at
// WaitCheck).
func (m *Mem) WaitFinish(p *cpu.Proc, tag dma.Tag, before sim.Time) {
	m.eng.WaitCollect(tag)
	if wait := p.Now() - before; wait > 0 {
		p.AddDMAWait(wait)
	}
}

// finishSM runs cpu.Proc.Finish for a streaming core — store-buffer
// drain, Mem.Flush, completion record — as a resumable state machine,
// with the identical yield placement: one sync yield at Flush's head
// and, only when the last DMA command is still in flight, one blocked
// yield on the engine.
type finishSM struct {
	m      *Mem
	p      *cpu.Proc
	pc     int
	t      sim.Time
	last   dma.Tag
	before sim.Time
}

// NewFinish returns the core's end-of-workload sequence as a Runnable;
// the inline-core path runs it after the workload's body machine.
func (m *Mem) NewFinish(p *cpu.Proc) sim.Runnable { return &finishSM{m: m, p: p} }

func (f *finishSM) Step(t *sim.Task) sim.Status {
	m, p := f.m, f.p
	switch f.pc {
	case 0:
		p.DrainStores()
		f.pc = 1
		return sim.StatusRunning // Flush's leading sync
	case 1:
		f.t = p.Now()
		if f.last = m.eng.LastTag(); f.last != 0 {
			if done, ok := m.eng.Done(f.last); ok {
				f.t = maxTime(f.t, done)
			} else {
				f.before = p.Now()
				if done, ok := m.eng.WaitStart(p.Task(), f.last); ok {
					f.t = maxTime(f.t, done)
				} else {
					t.WillBlockOn(m.eng.WaitLabel(f.last))
					f.pc = 2
					return sim.StatusBlocked
				}
			}
		}
	case 2:
		f.t = maxTime(f.t, m.eng.WaitCollect(f.last))
		if wait := p.Now() - f.before; wait > 0 {
			p.AddDMAWait(wait)
		}
	}
	m.eng.Stop()
	p.CompleteFinish(f.t)
	return sim.StatusDone
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

package stream

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/uncore"
)

// runSTR executes a body on one streaming core.
func runSTR(t *testing.T, body func(p *cpu.Proc, m *Mem)) (*cpu.Proc, *Mem, *uncore.Uncore) {
	t.Helper()
	eng := sim.NewEngine()
	unc := uncore.New(uncore.DefaultConfig(), noc.New(noc.DefaultConfig(4)))
	m := New(0, 0, DefaultConfig(), unc)
	m.Spawn(eng)
	p := cpu.New(0, 0, cpu.Config{Clock: sim.MHz(800)})
	eng.Spawn("core0", 0, func(task *sim.Task) {
		p.Bind(task, m)
		body(p, m)
		p.Finish()
	})
	eng.Run()
	return p, m, unc
}

func TestSmallCacheHitsAfterMiss(t *testing.T) {
	p, m, _ := runSTR(t, func(p *cpu.Proc, m *Mem) {
		p.Load(0x1000)
		p.Load(0x1004)
	})
	st := m.Cache().Stats()
	if st.Reads != 2 || st.ReadHits != 1 {
		t.Errorf("cache stats = %+v, want 2 reads 1 hit", st)
	}
	if p.Breakdown().LoadStall < 70*sim.Nanosecond {
		t.Error("miss through small cache should pay DRAM latency")
	}
}

func TestLSAccessesAreSingleCycle(t *testing.T) {
	p, m, _ := runSTR(t, func(p *cpu.Proc, m *Mem) {
		m.LSLoadN(p, 100)
		m.LSStoreN(p, 50)
	})
	if got := p.Breakdown().Total(); got != sim.MHz(800).Cycles(150) {
		t.Errorf("150 LS accesses took %v, want 150 cycles", got)
	}
	st := m.LocalStore().Stats()
	if st.Reads != 100 || st.Writes != 50 {
		t.Errorf("LS stats = %+v", st)
	}
}

func TestGetWaitChargesSync(t *testing.T) {
	p, _, unc := runSTR(t, func(p *cpu.Proc, m *Mem) {
		tag := m.Get(p, 0x100000, 4096)
		m.Wait(p, tag)
	})
	if p.Breakdown().Sync == 0 {
		t.Error("DMA wait charged no sync time")
	}
	if got := unc.DRAM().Stats().ReadBytes; got != 4096 {
		t.Errorf("DRAM read %d bytes, want 4096", got)
	}
}

func TestDoubleBufferingHidesTransfer(t *testing.T) {
	// Process 8 blocks of 4 KB with compute roughly equal to transfer
	// time; double buffering should hide most of the DMA latency.
	const blocks, bsz = 8, 4096
	run := func(double bool) sim.Time {
		p, _, _ := runSTR(t, func(p *cpu.Proc, m *Mem) {
			in := mem.Addr(0x100000)
			if !double {
				for b := 0; b < blocks; b++ {
					tag := m.Get(p, in+mem.Addr(b*bsz), bsz)
					m.Wait(p, tag)
					p.Work(2000)
				}
				return
			}
			tag := m.Get(p, in, bsz)
			for b := 0; b < blocks; b++ {
				var next interface{}
				_ = next
				cur := tag
				if b+1 < blocks {
					tag = m.Get(p, in+mem.Addr((b+1)*bsz), bsz)
				}
				m.Wait(p, cur)
				p.Work(2000)
			}
		})
		return p.FinishTime()
	}
	serial := run(false)
	dbl := run(true)
	if dbl >= serial {
		t.Errorf("double-buffered %v not faster than serial %v", dbl, serial)
	}
}

func TestFlushDrainsOutstandingPut(t *testing.T) {
	_, _, unc := runSTR(t, func(p *cpu.Proc, m *Mem) {
		m.Put(p, 0x200000, 8192)
		// No wait: Finish -> Flush must drain it.
	})
	if got := unc.DRAM().Stats().WriteBytes; got == 0 {
		// Data may still be dirty in L2 (write-back); check it arrived
		// at least at the L2.
		if unc.Stats().WriteRequests == 0 {
			t.Error("unwaited Put never reached the memory system")
		}
	}
}

func TestDirtyCacheEvictionWritesBack(t *testing.T) {
	_, m, unc := runSTR(t, func(p *cpu.Proc, m *Mem) {
		// 8 KB 2-way: 128 sets; lines 4 KB apart share a set.
		p.Store(0x0)
		p.Store(0x0 + 4*1024)
		p.Store(0x0 + 8*1024) // evicts dirty 0x0
	})
	if m.Cache().Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", m.Cache().Stats().Writebacks)
	}
	if unc.Stats().WriteRequests == 0 {
		t.Error("dirty eviction never reached the L2")
	}
}

func TestStorePFSFallsBackToStore(t *testing.T) {
	p, _, _ := runSTR(t, func(p *cpu.Proc, m *Mem) {
		p.StorePFS(0x3000)
	})
	if p.Stats().Stores != 1 {
		t.Errorf("stores = %d, want 1", p.Stats().Stores)
	}
}

func TestStridedAndIndexedWrappers(t *testing.T) {
	p, m, unc := runSTR(t, func(p *cpu.Proc, m *Mem) {
		t1 := m.GetStrided(p, 0x100000, 8, 64, 32)
		m.Wait(p, t1)
		t2 := m.PutStrided(p, 0x200000, 8, 64, 32)
		m.Wait(p, t2)
		addrs := []mem.Addr{0x300000, 0x300400, 0x300800}
		t3 := m.GetIndexed(p, addrs, 8)
		m.Wait(p, t3)
	})
	st := m.DMA().Stats()
	if st.SparseElems != 32+32+3 {
		t.Errorf("sparse elems = %d, want 67", st.SparseElems)
	}
	if st.GetBytes != 32*8+3*8 || st.PutBytes != 32*8 {
		t.Errorf("bytes: get=%d put=%d", st.GetBytes, st.PutBytes)
	}
	// Index construction costs instructions on the core.
	if p.Stats().Instructions == 0 {
		t.Error("no instructions charged")
	}
	_ = unc
}

func TestWaitForAlreadyDoneTag(t *testing.T) {
	p, _, _ := runSTR(t, func(p *cpu.Proc, m *Mem) {
		tag := m.Get(p, 0x100000, 64)
		m.Wait(p, tag)
		before := p.Breakdown().Sync
		// Long after completion: a second phase waits on a new tag that
		// finishes before the core looks at it.
		p.WaitUntil(p.Now() + 50*sim.Microsecond)
		tag2 := m.Get(p, 0x200000, 64)
		p.Work(100000) // plenty of time for the transfer to finish
		m.Wait(p, tag2)
		after := p.Breakdown().Sync
		if after-before > 60*sim.Microsecond {
			t.Errorf("wait on finished tag charged %v sync", after-before)
		}
	})
	_ = p
}

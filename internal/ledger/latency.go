package ledger

import (
	"io"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Latency is one run's set of service-time histograms, shared by every
// layer of the memory system. Each recording site holds a *Latency that
// is nil when the ledger is disabled — the same sentinel compare as the
// per-core cycle ledger. All values are femtoseconds.
type Latency struct {
	// ReadMiss / WriteMiss are demand misses of the first-level storage:
	// the CC and INC L1s, or the STR 8 KB stack/globals cache — issue to
	// data-available, as seen by the core.
	ReadMiss  stats.Histogram
	WriteMiss stats.Histogram
	// L2Hit / DRAMFill split uncore line reads by where the data came
	// from: the shared L2's port, or a DRAM fill (request leaving the
	// cluster to data back at the cluster).
	L2Hit    stats.Histogram
	DRAMFill stats.Histogram
	// DMAGet / DMAPut are whole DMA command latencies: enqueue by the
	// core to last beat complete, queuing included.
	DMAGet stats.Histogram
	DMAPut stats.Histogram
	// NoCAcquire is the arbitration wait of every bus and crossbar
	// transfer: grant time minus arrival at the link.
	NoCAcquire stats.Histogram
}

// Each calls f for every histogram in fixed export order.
func (l *Latency) Each(f func(name string, h *stats.Histogram)) {
	f("read_miss", &l.ReadMiss)
	f("write_miss", &l.WriteMiss)
	f("l2_hit", &l.L2Hit)
	f("dram_fill", &l.DRAMFill)
	f("dma_get", &l.DMAGet)
	f("dma_put", &l.DMAPut)
	f("noc_acquire", &l.NoCAcquire)
}

// Bucket is one non-empty power-of-two histogram bucket.
type Bucket struct {
	LoFS  sim.Time `json:"lo_fs"`
	HiFS  sim.Time `json:"hi_fs"`
	Count uint64   `json:"count"`
}

// Dist is the report form of one histogram: headline quantiles plus the
// non-empty buckets, so a manifest record carries the full (lossy-by-
// factor-two) distribution, not just moments.
type Dist struct {
	Count   uint64   `json:"count"`
	MeanFS  sim.Time `json:"mean_fs"`
	P50FS   sim.Time `json:"p50_fs"`
	P95FS   sim.Time `json:"p95_fs"`
	P99FS   sim.Time `json:"p99_fs"`
	MaxFS   sim.Time `json:"max_fs"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// distOf summarizes a histogram; nil when it recorded nothing, so empty
// metrics vanish from JSON instead of reading as all-zero distributions.
func distOf(h *stats.Histogram) *Dist {
	if h.Count() == 0 {
		return nil
	}
	d := &Dist{
		Count:  h.Count(),
		MeanFS: sim.Time(h.Mean()),
		P50FS:  sim.Time(h.P50()),
		P95FS:  sim.Time(h.P95()),
		P99FS:  sim.Time(h.P99()),
		MaxFS:  sim.Time(h.Max()),
	}
	h.Buckets(func(lo, hi, count uint64) {
		d.Buckets = append(d.Buckets, Bucket{LoFS: sim.Time(lo), HiFS: sim.Time(hi), Count: count})
	})
	return d
}

// LatencySummary is the Report's latency block, one Dist per metric
// (nil = no observations in this run).
type LatencySummary struct {
	ReadMiss   *Dist `json:"read_miss,omitempty"`
	WriteMiss  *Dist `json:"write_miss,omitempty"`
	L2Hit      *Dist `json:"l2_hit,omitempty"`
	DRAMFill   *Dist `json:"dram_fill,omitempty"`
	DMAGet     *Dist `json:"dma_get,omitempty"`
	DMAPut     *Dist `json:"dma_put,omitempty"`
	NoCAcquire *Dist `json:"noc_acquire,omitempty"`
}

// Summary converts the histograms to the report block.
func (l *Latency) Summary() *LatencySummary {
	return &LatencySummary{
		ReadMiss:   distOf(&l.ReadMiss),
		WriteMiss:  distOf(&l.WriteMiss),
		L2Hit:      distOf(&l.L2Hit),
		DRAMFill:   distOf(&l.DRAMFill),
		DMAGet:     distOf(&l.DMAGet),
		DMAPut:     distOf(&l.DMAPut),
		NoCAcquire: distOf(&l.NoCAcquire),
	}
}

// Each calls f for every non-nil distribution in fixed export order.
func (s *LatencySummary) Each(f func(name string, d *Dist)) {
	for _, e := range []struct {
		name string
		d    *Dist
	}{
		{"read_miss", s.ReadMiss},
		{"write_miss", s.WriteMiss},
		{"l2_hit", s.L2Hit},
		{"dram_fill", s.DRAMFill},
		{"dma_get", s.DMAGet},
		{"dma_put", s.DMAPut},
		{"noc_acquire", s.NoCAcquire},
	} {
		if e.d != nil {
			f(e.name, e.d)
		}
	}
}

// WriteBucketsCSV exports every distribution's non-empty buckets as CSV
// (metric,lo_fs,hi_fs,count) — the memsim -latency-csv payload.
func (s *LatencySummary) WriteBucketsCSV(w io.Writer) {
	t := stats.NewTable("", "metric", "lo_fs", "hi_fs", "count")
	s.Each(func(name string, d *Dist) {
		for _, b := range d.Buckets {
			t.Row(name, uint64(b.LoFS), uint64(b.HiFS), b.Count)
		}
	})
	t.WriteCSV(w)
}

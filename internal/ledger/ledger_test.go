package ledger

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestClassNamesAndOrder(t *testing.T) {
	names := ClassNames()
	if len(names) != int(NumClasses) {
		t.Fatalf("ClassNames: %d names, want %d", len(names), NumClasses)
	}
	if names[Compute] != "compute" || names[Idle] != "idle" {
		t.Errorf("unexpected names: %v", names)
	}
	if got := PrefetchShadow.String(); got != "prefetch_shadow" {
		t.Errorf("String() = %q", got)
	}
	if got := Class(250).String(); !strings.Contains(got, "250") {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestLedgerChargeAndTotal(t *testing.T) {
	var l Ledger
	l.Charge(Compute, 10)
	l.Charge(Compute, 5)
	l.Charge(SyncWait, 7)
	if got := l.Get(Compute); got != 15 {
		t.Errorf("Get(Compute) = %d, want 15", got)
	}
	if got := l.Total(); got != 22 {
		t.Errorf("Total() = %d, want 22", got)
	}
}

func TestLedgerAddAndSnapshot(t *testing.T) {
	var a, b Ledger
	a.Charge(LoadStall, 3)
	b.Charge(LoadStall, 4)
	b.Charge(DMAWait, 2)
	a.Add(&b)
	if got := a.Get(LoadStall); got != 7 {
		t.Errorf("after Add, LoadStall = %d, want 7", got)
	}
	var names []string
	a.Snapshot(func(name string, _ float64) { names = append(names, name) })
	// Idle is excluded: it is derived at report time.
	want := []string{"compute", "load_stall", "store_stall", "sync_wait", "dma_wait", "prefetch_shadow"}
	if len(names) != len(want) {
		t.Fatalf("Snapshot emitted %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Snapshot[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestSummaryIdleAndCheck(t *testing.T) {
	const wall = sim.Time(100)
	l0, l1 := &Ledger{}, &Ledger{}
	l0.Charge(Compute, 60)
	l0.Charge(LoadStall, 40) // finishes exactly at wall
	l1.Charge(Compute, 30)   // finishes at 30; 70 idle
	s := NewSummary(wall, []*Ledger{l0, l1}, []sim.Time{100, 30})
	if got := s.PerCore[0][Idle]; got != 0 {
		t.Errorf("core 0 idle = %d, want 0", got)
	}
	if got := s.PerCore[1][Idle]; got != 70 {
		t.Errorf("core 1 idle = %d, want 70", got)
	}
	if err := s.Check(wall); err != nil {
		t.Errorf("Check: %v", err)
	}
	if got := s.Avg[Compute]; got != 45 {
		t.Errorf("Avg[Compute] = %d, want 45", got)
	}
	// Break conservation and watch Check catch it.
	s.PerCore[1][Compute]++
	if err := s.Check(wall); err == nil {
		t.Errorf("Check missed a broken row")
	}
}

// Package ledger is the cross-layer cycle-accounting subsystem: a
// per-core ledger that attributes every core cycle to a fixed taxonomy
// of classes, plus service-time histograms for the memory system's
// latency distributions (latency.go).
//
// The ledger refines the Figure 2 breakdown (cpu.Breakdown) without
// replacing it: every site in internal/cpu that charges a breakdown
// bucket also charges exactly one ledger class covering the same span
// of simulated time, so the non-idle classes sum to the core's finish
// time by construction, and — with Idle defined as wall minus finish —
// all classes sum exactly to the run's wall time. That conservation
// invariant is what makes stacked breakdown figures trustworthy: no
// cycle is counted twice, none is dropped. Summary.Check enforces it
// and the repo's property test runs it across every shipped workload.
//
// Cost discipline: a Proc's ledger pointer is nil when accounting is
// disabled, so the only cost on the disabled hot path is a nil compare
// per charge site — the same sentinel pattern the probe layer uses for
// its epoch check (BenchmarkLedgerDisabled gates it).
package ledger

import (
	"fmt"

	"repro/internal/sim"
)

// Class is one cycle-accounting category.
type Class uint8

// The taxonomy. Compute covers issue, fetch and I-miss stalls (the
// Figure 2 "Useful" bucket). LoadStall and StoreStall split memory
// stalls by direction; StoreStall is store-buffer-full time. SyncWait is
// lock/barrier/flush waiting; DMAWait is time blocked on DMA command
// completion (reported inside "Sync" in Figure 2, split out here).
// PrefetchShadow is load-stall time on lines a prefetch had already
// in flight — latency the prefetcher hid partially. Idle is wall time
// after the core finished while others still ran (load imbalance).
const (
	Compute Class = iota
	LoadStall
	StoreStall
	SyncWait
	DMAWait
	PrefetchShadow
	Idle
	NumClasses
)

// classNames is indexed by Class; the strings are the fixed export
// vocabulary (probe series, report JSON, figure CSV columns).
var classNames = [NumClasses]string{
	"compute",
	"load_stall",
	"store_stall",
	"sync_wait",
	"dma_wait",
	"prefetch_shadow",
	"idle",
}

// String returns the export name of the class.
func (c Class) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ClassNames returns the taxonomy in charge order (figure legends, CSV
// headers).
func ClassNames() []string {
	out := make([]string, NumClasses)
	copy(out, classNames[:])
	return out
}

// Ledger accumulates one core's cycle classes in femtoseconds.
type Ledger struct {
	classes [NumClasses]sim.Time
}

// Charge adds d to class c.
func (l *Ledger) Charge(c Class, d sim.Time) { l.classes[c] += d }

// Get returns the accumulated time of class c.
func (l *Ledger) Get(c Class) sim.Time { return l.classes[c] }

// Total returns the sum over all classes.
func (l *Ledger) Total() sim.Time {
	var t sim.Time
	for _, v := range l.classes {
		t += v
	}
	return t
}

// Classes returns the class array by value (report assembly).
func (l *Ledger) Classes() [NumClasses]sim.Time { return l.classes }

// Add accumulates src into l (aggregating cores for the probe series).
func (l *Ledger) Add(src *Ledger) {
	for i := range l.classes {
		l.classes[i] += src.classes[i]
	}
}

// Snapshot emits the live classes in fixed order (probe layer). Idle is
// excluded: it is derived at report time from wall minus finish and is
// meaningless mid-run.
func (l *Ledger) Snapshot(put func(name string, value float64)) {
	for c := Compute; c < Idle; c++ {
		put(classNames[c], float64(l.classes[c]))
	}
}

// Summary is the Report's cycle-accounting block: each core's class
// totals (including the derived Idle) plus the per-core average. The
// conservation invariant is that every row of PerCore sums exactly to
// the run's wall time.
type Summary struct {
	// Classes names the columns of PerCore and Avg, in order.
	Classes []string `json:"classes"`
	// PerCore[i][c] is core i's femtoseconds in class c.
	PerCore [][NumClasses]sim.Time `json:"per_core_fs"`
	// Avg is the per-core average of each class, on the same scale as
	// the wall time (truncating division; the invariant lives in
	// PerCore, not here).
	Avg [NumClasses]sim.Time `json:"avg_fs"`
}

// NewSummary assembles the report block from the per-core ledgers and
// finish times: Idle[i] = wall - finish[i].
func NewSummary(wall sim.Time, leds []*Ledger, finish []sim.Time) *Summary {
	s := &Summary{Classes: ClassNames()}
	for i, l := range leds {
		row := l.Classes()
		row[Idle] = wall - finish[i]
		s.PerCore = append(s.PerCore, row)
		for c := range row {
			s.Avg[c] += row[c]
		}
	}
	if n := sim.Time(uint64(len(leds))); n > 0 {
		for c := range s.Avg {
			s.Avg[c] /= n
		}
	}
	return s
}

// Check verifies the conservation invariant: every core's classes sum
// exactly to wall. A non-nil error names the first offending core and
// the discrepancy — a charge site that moved a clock without charging a
// class, or vice versa.
func (s *Summary) Check(wall sim.Time) error {
	for i, row := range s.PerCore {
		var sum sim.Time
		for _, v := range row {
			sum += v
		}
		if sum != wall {
			return fmt.Errorf("ledger: core %d classes sum to %v, wall is %v (off by %d fs)",
				i, sum, wall, int64(sum)-int64(wall))
		}
	}
	return nil
}

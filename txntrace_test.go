package memsys_test

import (
	"bytes"
	"encoding/json"
	"testing"

	memsys "repro"
	"repro/internal/txntrace"
)

// reportBytes runs one workload/model pair and returns the full report
// as JSON. arm configures the run's transaction tracer (nil = off).
func reportBytes(t *testing.T, model memsys.Model, name string, arm func() *memsys.TxnTrace) []byte {
	t.Helper()
	cfg := memsys.DefaultConfig(model, 2)
	if arm != nil {
		cfg.TxnTrace = arm()
	}
	rep, err := memsys.Run(cfg, name, memsys.ScaleSmall)
	if err != nil {
		t.Fatalf("%v/%s: %v", model, name, err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestTxnTraceDoesNotPerturbReports is the zero-perturbation gate:
// every shipped workload on every model must produce byte-identical
// reports with tracing off, with sampled capture on, and with exemplar
// capture on. The tracer only ever reads simulated clocks; any
// divergence here means a hook leaked time or state into the model.
func TestTxnTraceDoesNotPerturbReports(t *testing.T) {
	sampled := func() *memsys.TxnTrace {
		tr := memsys.NewTxnTrace()
		tr.SampleEvery = 16
		tr.Seed = 42
		return tr
	}
	exemplars := func() *memsys.TxnTrace { return memsys.NewTxnTrace() }
	for _, model := range []memsys.Model{memsys.CC, memsys.STR, memsys.INC} {
		for _, name := range memsys.Workloads() {
			off := reportBytes(t, model, name, nil)
			if on := reportBytes(t, model, name, sampled); !bytes.Equal(off, on) {
				t.Errorf("%v/%s: sampled tracing changed the report", model, name)
			}
			if on := reportBytes(t, model, name, exemplars); !bytes.Equal(off, on) {
				t.Errorf("%v/%s: exemplar tracing changed the report", model, name)
			}
		}
	}
}

// checkConservation walks one tree: each node's hop AdvanceFS values
// must sum exactly to its end-to-end latency (the per-hop attribution
// is a partition of the transaction's wait, not a sample of it).
func checkConservation(t *testing.T, x *memsys.Txn) {
	t.Helper()
	var sum int64
	for _, h := range x.Hops {
		if h.AdvanceFS < 0 {
			t.Errorf("txn #%d: hop %s.%s has negative advance %d", x.ID, h.Component, h.Op, h.AdvanceFS)
		}
		sum += int64(h.AdvanceFS)
	}
	if sum != int64(x.Latency()) {
		t.Errorf("txn #%d %s: per-hop cycles sum to %d fs, latency is %d fs", x.ID, x.Class, sum, x.Latency())
	}
	for _, k := range x.Kids {
		checkConservation(t, k)
	}
}

// TestTxnTraceConservation runs the acceptance workload (fir, CC,
// 8 cores) and checks every retained tree — worst-K exemplars of every
// class plus the sampled population — for exact latency conservation.
func TestTxnTraceConservation(t *testing.T) {
	cfg := memsys.DefaultConfig(memsys.CC, 8)
	tr := memsys.NewTxnTrace()
	tr.SampleEvery = 64
	cfg.TxnTrace = tr
	if _, err := memsys.Run(cfg, "fir", memsys.ScaleSmall); err != nil {
		t.Fatal(err)
	}
	trees := 0
	for _, c := range txntrace.Classes() {
		for _, x := range tr.Exemplars(c) {
			checkConservation(t, x)
			trees++
		}
	}
	if trees == 0 {
		t.Fatal("no exemplar trees retained on an 8-core CC fir run")
	}
	if tr.Exemplars(txntrace.ReadMiss) == nil {
		t.Fatal("no worst-K read_miss exemplars")
	}
	for _, x := range tr.Kept() {
		checkConservation(t, x)
	}
	if len(tr.Kept()) == 0 {
		t.Fatal("1-in-64 sampling kept nothing; the fir run issues thousands of transactions")
	}
}

// TestTxnTraceDeterminism: two runs at the same seed retain identical
// transaction trees, byte for byte through the JSONL sink — the
// contract that lets a re-run trace the exact transactions a previous
// run's exemplars pointed at.
func TestTxnTraceDeterminism(t *testing.T) {
	capture := func() []byte {
		cfg := memsys.DefaultConfig(memsys.CC, 8)
		tr := memsys.NewTxnTrace()
		tr.SampleEvery = 64
		tr.Seed = 7
		cfg.TxnTrace = tr
		if _, err := memsys.Run(cfg, "fir", memsys.ScaleSmall); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := capture(), capture()
	if len(a) == 0 {
		t.Fatal("no trees captured")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed runs retained different trees (%d vs %d bytes)", len(a), len(b))
	}
}

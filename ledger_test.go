package memsys_test

import (
	"bytes"
	"encoding/json"
	"testing"

	memsys "repro"
)

// TestLedgerConservation is the cycle-accounting layer's property test:
// for every shipped workload, on both of the paper's models (plus the
// incoherent extension) and across core counts, each core's ledger
// classes — with Idle derived from wall minus finish — must sum EXACTLY
// to the run's wall time. Any charge site that moves a core clock
// without charging a class (or double-charges one) fails here with the
// femtosecond discrepancy.
func TestLedgerConservation(t *testing.T) {
	models := []memsys.Model{memsys.CC, memsys.STR, memsys.INC}
	coreCounts := []int{1, 4, 8}
	if testing.Short() {
		coreCounts = []int{4}
	}
	for _, name := range memsys.Workloads() {
		for _, model := range models {
			for _, cores := range coreCounts {
				name, model, cores := name, model, cores
				t.Run(name+"-"+model.String()+"-"+itoa(cores), func(t *testing.T) {
					t.Parallel()
					cfg := memsys.DefaultConfig(model, cores)
					cfg.CycleLedger = true
					rep, err := memsys.Run(cfg, name, memsys.ScaleSmall)
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					if rep.Cycles == nil {
						t.Fatalf("CycleLedger set but Report.Cycles is nil")
					}
					if err := rep.Cycles.Check(rep.Wall); err != nil {
						t.Errorf("conservation: %v", err)
					}
					if rep.Latency == nil {
						t.Fatalf("CycleLedger set but Report.Latency is nil")
					}
				})
			}
		}
	}
}

// TestLedgerDoesNotPerturbReports pins the accounting layer's zero-
// interference invariant, the same discipline as
// TestProbeDoesNotPerturbReports: enabling the cycle ledger must not
// change the simulated outcome. Stripping the two ledger-only blocks
// from the enabled report must leave bytes identical to the disabled
// run's report.
func TestLedgerDoesNotPerturbReports(t *testing.T) {
	cases := []struct {
		workload string
		model    memsys.Model
	}{
		{"fir", memsys.CC},
		{"fir", memsys.STR},
		{"mergesort", memsys.CC},
		{"mergesort", memsys.STR},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.workload+"-"+tc.model.String(), func(t *testing.T) {
			t.Parallel()
			run := func(ledgerOn bool) []byte {
				cfg := memsys.DefaultConfig(tc.model, 4)
				cfg.CycleLedger = ledgerOn
				rep, err := memsys.Run(cfg, tc.workload, memsys.ScaleSmall)
				if err != nil {
					t.Fatalf("run (ledger=%v): %v", ledgerOn, err)
				}
				js, err := json.Marshal(rep)
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				// Strip the ledger-only blocks; everything else must match.
				var m map[string]json.RawMessage
				if err := json.Unmarshal(js, &m); err != nil {
					t.Fatalf("unmarshal: %v", err)
				}
				if ledgerOn {
					if _, ok := m["Cycles"]; !ok {
						t.Fatalf("enabled report lacks Cycles block")
					}
				} else {
					if _, ok := m["Cycles"]; ok {
						t.Fatalf("disabled report carries a Cycles block")
					}
				}
				delete(m, "Cycles")
				delete(m, "Latency")
				out, err := json.Marshal(m)
				if err != nil {
					t.Fatalf("re-marshal: %v", err)
				}
				return out
			}
			off := run(false)
			on := run(true)
			if !bytes.Equal(off, on) {
				t.Errorf("report differs with the ledger on:\noff: %s\non:  %s", off, on)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
